package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"slipstream/internal/stats"
)

type recorder struct {
	events []Event
}

func (r *recorder) Event(e *Event) { r.events = append(r.events, *e) }

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	b.Emit(&Event{Kind: EvAccess}) // must not panic
	if nb := NewBus(); nb != nil {
		t.Fatalf("NewBus() = %v, want nil", nb)
	}
	if nb := NewBus(nil, nil); nb != nil {
		t.Fatalf("NewBus(nil, nil) = %v, want nil", nb)
	}
	if nb := (*Bus)(nil).Attach(nil); nb != nil {
		t.Fatalf("nil.Attach(nil) = %v, want nil", nb)
	}
}

func TestBusFanOutOrder(t *testing.T) {
	var order []int
	mk := func(id int) Observer {
		return observerFunc(func(e *Event) { order = append(order, id) })
	}
	b := NewBus(mk(1), mk(2)).Attach(mk(3))
	b.Emit(&Event{Kind: EvSession})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("delivery order = %v, want [1 2 3]", order)
	}
}

type observerFunc func(e *Event)

func (f observerFunc) Event(e *Event) { f(e) }

func TestClockMonitorEmitsSteps(t *testing.T) {
	rec := &recorder{}
	m := &ClockMonitor{Bus: NewBus(rec)}
	m.Step(10, 25)
	m.Step(25, 25)
	if len(rec.events) != 2 {
		t.Fatalf("got %d events, want 2", len(rec.events))
	}
	e := rec.events[0]
	if e.Kind != EvStep || e.Time != 25 || e.Count != 10 || e.Task != -1 || e.CPU != -1 {
		t.Fatalf("unexpected step event: %+v", e)
	}
}

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 19, 19}, {1<<19 + 1, 20}, {1 << 40, 20},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	var h Hist
	h.Observe(3)
	h.Observe(100)
	if h.Count != 2 || h.Sum != 103 {
		t.Fatalf("count=%d sum=%d, want 2/103", h.Count, h.Sum)
	}
}

func TestMetricsEventDerivation(t *testing.T) {
	var m Metrics
	m.Event(&Event{Kind: EvAccess, Level: LevelDirRemote, Dur: 120, Flags: FlagTransparent})
	m.Event(&Event{Kind: EvAccess, Level: LevelL2, Dur: 20})
	m.Event(&Event{Kind: EvBarrier, Dur: 50})
	m.Event(&Event{Kind: EvBarrier, Dur: 5, Note: "event"})
	m.Event(&Event{Kind: EvLock, Dur: 7})
	m.Event(&Event{Kind: EvToken, Dur: 0})
	m.Event(&Event{Kind: EvTaskEnd, Dur: 100, BD: stats.Breakdown{Busy: 60, MemStall: 40}})
	m.Event(&Event{Kind: EvResource, Note: "node0/l2port", Dur: 33, Count: 4})
	m.Event(&Event{Kind: EvRunEnd, Dur: 500})

	checks := map[string]int64{
		"access.dir-remote":          1,
		"access.l2":                  1,
		"access.transparent":         1,
		"task.count":                 1,
		"task.cycles.busy":           60,
		"task.cycles.memstall":       40,
		"resource.busy.node0/l2port": 33,
		"resource.uses.node0/l2port": 4,
		"run.count":                  1,
		"run.cycles":                 500,
	}
	for name, want := range checks {
		if got := m.Counter(name); got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if h := m.Histogram("wait.barrier"); h == nil || h.Count != 1 || h.Sum != 50 {
		t.Errorf("wait.barrier histogram wrong: %+v", h)
	}
	if h := m.Histogram("wait.event"); h == nil || h.Count != 1 || h.Sum != 5 {
		t.Errorf("wait.event histogram wrong: %+v", h)
	}
	if h := m.Histogram("wait.arsync"); h == nil || h.Count != 1 || h.Sum != 0 {
		t.Errorf("wait.arsync histogram wrong: %+v", h)
	}
	if h := m.Histogram("mem.dir-remote"); h == nil || h.Sum != 120 {
		t.Errorf("mem.dir-remote histogram wrong: %+v", h)
	}
}

func TestMetricsWriteDeterministicAndMergeable(t *testing.T) {
	build := func() *Metrics {
		var m Metrics
		m.Count("b", 2)
		m.Count("a", 1)
		m.Observe("h2", 10)
		m.Observe("h1", 3)
		return &m
	}
	var w1, w2 bytes.Buffer
	if err := build().WriteText(&w1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteText(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatalf("text rendering not deterministic:\n%s\nvs\n%s", w1.String(), w2.String())
	}
	want := "counter a 1\ncounter b 2\nhist h1 count=1 sum=3 le4=1\nhist h2 count=1 sum=10 le16=1\n"
	if w1.String() != want {
		t.Fatalf("text rendering:\n%q\nwant\n%q", w1.String(), want)
	}

	// Merging in either order yields the same rendering.
	y := build()
	y.Count("c", 5)
	var ab, ba bytes.Buffer
	mx := build()
	mx.Merge(y)
	if err := mx.WriteText(&ab); err != nil {
		t.Fatal(err)
	}
	my := &Metrics{}
	my.Merge(y)
	my.Merge(build())
	if err := my.WriteText(&ba); err != nil {
		t.Fatal(err)
	}
	if ab.String() != ba.String() {
		t.Fatalf("merge order changed rendering:\n%s\nvs\n%s", ab.String(), ba.String())
	}

	var csv bytes.Buffer
	if err := build().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(csv.Bytes(), []byte("type,name,field,value\n")) {
		t.Fatalf("csv missing header: %q", csv.String())
	}
}

func TestChromeTraceJSONParses(t *testing.T) {
	tr := &ChromeTrace{Pid: 3, Name: `spec "quoted"`}
	tr.Event(&Event{Kind: EvTaskStart, Task: 0, CPU: 0, Role: RoleR})
	tr.Event(&Event{Kind: EvTaskStart, Task: 0, CPU: 1, Role: RoleA, Flags: FlagRefork})
	tr.Event(&Event{Kind: EvTaskEnd, Task: 0, CPU: 0, Time: 100, Dur: 100, Note: "R"})
	tr.Event(&Event{Kind: EvAccess, CPU: 0, Time: 50, Dur: 30, Level: LevelDirRemote})
	tr.Event(&Event{Kind: EvAccess, CPU: 0, Time: 10, Dur: 1, Level: LevelL1}) // dropped
	tr.Event(&Event{Kind: EvBarrier, CPU: 0, Time: 80, Dur: 20})
	tr.Event(&Event{Kind: EvBarrier, CPU: 0, Time: 85, Dur: 5, Note: "event"})
	tr.Event(&Event{Kind: EvLock, CPU: 1, Time: 60, Dur: 12})
	tr.Event(&Event{Kind: EvToken, CPU: 1, Time: 70, Dur: 0}) // dropped
	tr.Event(&Event{Kind: EvToken, CPU: 1, Time: 75, Dur: 4})
	tr.Event(&Event{Kind: EvSession, CPU: 0, Time: 40, Note: "barrier-entry"})
	tr.Event(&Event{Kind: EvRecovery, CPU: 1, Time: 90})
	tr.Event(&Event{Kind: EvPolicySwitch, CPU: 1, Time: 95, Note: "a-often"})
	tr.Event(&Event{Kind: EvStep, Time: 1}) // ignored

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 2 thread_name + 10 recorded records (the refork
	// instant counts; the L1 access, zero token, and EvStep are dropped).
	if want := 3 + 10; len(doc.TraceEvents) != want {
		t.Fatalf("got %d trace events, want %d:\n%s", len(doc.TraceEvents), want, buf.String())
	}

	// Identical runs render byte-identically.
	var again bytes.Buffer
	if err := tr.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("repeated rendering differs")
	}
}

func TestChromeMinAccessFilters(t *testing.T) {
	tr := &ChromeTrace{MinAccess: 50}
	tr.Event(&Event{Kind: EvAccess, Time: 100, Dur: 49, Level: LevelL2})
	if tr.Len() != 0 {
		t.Fatalf("short access not filtered, len=%d", tr.Len())
	}
	tr.Event(&Event{Kind: EvAccess, Time: 100, Dur: 50, Level: LevelL2})
	if tr.Len() != 1 {
		t.Fatalf("qualifying access dropped, len=%d", tr.Len())
	}
}
