// Package obs is the simulator's unified observation layer: a typed,
// deterministic event stream covering task lifecycle, memory accesses with
// classification and latency, coherence-line transitions, synchronization
// waits, and end-of-run resource occupancy, delivered through a
// nil-checkable fan-out Bus.
//
// Every instrumentation consumer — the runtime invariant auditor, the
// structured trace collector, the Chrome trace-event exporter, and the
// metrics registry — is an Observer subscribed to one Bus. Emission sites
// guard with a single pointer test (`if bus != nil`), so a run with nothing
// attached pays one branch per event site and constructs no Event values.
//
// Determinism rules:
//
//   - Events are delivered synchronously, in simulation order, on the
//     simulating goroutine. Because every simulation is single-threaded and
//     a pure function of its RunSpec, the event stream is too: equal specs
//     produce byte-identical streams regardless of how many runs execute
//     in parallel around them.
//   - Event.Time is the emitting task's local clock, which may run ahead of
//     the engine clock on private L1 hits (bounded clock-skew batching), so
//     times are not globally monotone across tasks. Exporters needing a
//     global time order sort stably by time at write-out; subscribers that
//     inspect live simulation state (the auditor) rely on the synchronous,
//     unsorted delivery instead.
//   - Observers must not mutate simulation state and must not retain the
//     *Event past the call (emitters may reuse the value).
package obs

import "slipstream/internal/stats"

// Kind tags an observation event.
type Kind uint8

// Event kinds.
const (
	// EvTaskStart marks a task incarnation starting (Task, CPU, Role;
	// Note is the role label, Flags may carry FlagRefork).
	EvTaskStart Kind = iota
	// EvTaskEnd marks a task incarnation finishing naturally (Dur is its
	// measured execution time, BD its breakdown, Note the role label).
	EvTaskEnd
	// EvAccessStart marks a memory access issuing (Time is the issue
	// time), before any state changes.
	EvAccessStart
	// EvAccess marks a memory access completing (Time is the completion
	// time, Dur the total latency, Level where it was satisfied).
	EvAccess
	// EvLine marks a coherence-state change of line Addr (directory
	// transaction, eviction, transparent-copy discard, self-invalidation,
	// L2-to-L1 push). Dir and Sharers carry the directory entry's state.
	EvLine
	// EvSession marks a task entering a session boundary (Note:
	// "barrier-entry", "event-entry", or "a-boundary").
	EvSession
	// EvBarrier records a completed barrier or event wait (Dur = wait;
	// Note is "" for barriers, "event" for event waits).
	EvBarrier
	// EvLock records a completed lock acquisition (Addr = lock id,
	// Dur = wait cycles).
	EvLock
	// EvToken records a completed A-R token consume (Dur = wait cycles,
	// possibly zero).
	EvToken
	// EvPark marks a task parking on a synchronization object (Note names
	// it: "barrier", "lock", "event", "once").
	EvPark
	// EvWake marks a parked task resuming (Dur = parked cycles, Note as
	// for EvPark).
	EvWake
	// EvRecovery marks an A-stream kill-and-refork.
	EvRecovery
	// EvPolicySwitch marks an adaptive A-R policy change (Note = new
	// policy).
	EvPolicySwitch
	// EvStep reports one engine event executed: the clock moved from
	// Count (previous time) to Time.
	EvStep
	// EvResource reports one resource's end-of-run occupancy (Note names
	// it, Dur = busy cycles, Count = acquisitions).
	EvResource
	// EvRunEnd marks the end of the run, after memsys finalization
	// (Dur = run cycles; Flags may carry FlagSlipstream).
	EvRunEnd
	numKinds
)

// Kinds lists every event kind in declaration order, for deterministic
// iteration over per-kind data.
var Kinds = []Kind{
	EvTaskStart, EvTaskEnd, EvAccessStart, EvAccess, EvLine, EvSession,
	EvBarrier, EvLock, EvToken, EvPark, EvWake, EvRecovery, EvPolicySwitch,
	EvStep, EvResource, EvRunEnd,
}

var kindNames = [numKinds]string{
	"task-start", "task-end", "access-start", "access", "line", "session",
	"barrier", "lock", "token", "park", "wake", "recovery", "policy-switch",
	"step", "resource", "run-end",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Op mirrors memsys.AccessKind by ordinal (asserted by a memsys test).
type Op uint8

// Memory operations.
const (
	OpRead Op = iota
	OpWrite
	OpPrefetchExcl
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpPrefetchExcl:
		return "prefetch-excl"
	}
	return "?"
}

// Role mirrors memsys.Role by ordinal (asserted by a memsys test).
type Role uint8

// Stream roles.
const (
	RoleNone Role = iota
	RoleR
	RoleA
)

func (r Role) String() string {
	switch r {
	case RoleR:
		return "R"
	case RoleA:
		return "A"
	}
	return "-"
}

// Level classifies where an access was satisfied.
type Level uint8

// Access levels.
const (
	LevelNone Level = iota // not classified (EvAccessStart)
	LevelL1
	LevelL2
	LevelDirLocal
	LevelDirRemote
	numLevels
)

var levelNames = [numLevels]string{"none", "l1", "l2", "dir-local", "dir-remote"}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "?"
}

// DirState mirrors memsys.DirState by ordinal (asserted by a memsys test).
type DirState uint8

// Directory states.
const (
	DirIdle DirState = iota
	DirShared
	DirExclusive
)

// Flags carries boolean event attributes.
type Flags uint8

// Flag bits.
const (
	// FlagTransparent marks a transparent (non-coherent) access.
	FlagTransparent Flags = 1 << iota
	// FlagInCS marks an access issued inside a critical section.
	FlagInCS
	// FlagRefork marks a task incarnation spawned by recovery.
	FlagRefork
	// FlagSlipstream marks a slipstream-mode run (EvRunEnd).
	FlagSlipstream
)

// Event is one observation record. It is a flat value type: which fields
// are meaningful depends on Kind (see the kind constants). Task and CPU are
// -1 when the event is not attributed to a task or processor.
type Event struct {
	Kind    Kind
	Time    int64 // completion/occurrence time, task-local clock
	Dur     int64 // latency or wait, where applicable
	Count   int64 // generic count: EvStep previous time, EvResource uses
	Task    int   // logical task id, or -1
	CPU     int   // global processor id, or -1
	Session int   // emitting task's session counter
	Role    Role  // issuing stream
	Op      Op    // memory operation (access events)
	Level   Level // access classification (EvAccess)
	Dir     DirState
	Addr    uint64 // address (accesses), line address (EvLine), lock id
	Sharers uint64 // directory sharer mask (EvLine)
	Flags   Flags
	Note    string
	BD      stats.Breakdown // task breakdown (EvTaskEnd)
}

// Observer consumes observation events. Implementations must not mutate
// simulation state and must not retain e past the call.
type Observer interface {
	Event(e *Event)
}

// Bus fans events out to its observers, in attachment order. A nil *Bus is
// the "nothing attached" state: emission sites test the pointer and skip
// event construction entirely, so unobserved runs pay one branch per site.
type Bus struct {
	obs []Observer
}

// NewBus returns a bus with the given observers attached, or nil if none
// are non-nil (so callers can hand the result straight to a nil-checked
// emission path).
func NewBus(observers ...Observer) *Bus {
	var b *Bus
	for _, o := range observers {
		b = b.Attach(o)
	}
	return b
}

// Attach adds an observer and returns the bus, allocating one if b is nil.
// Attaching nil is a no-op.
func (b *Bus) Attach(o Observer) *Bus {
	if o == nil {
		return b
	}
	if b == nil {
		b = &Bus{}
	}
	b.obs = append(b.obs, o)
	return b
}

// Emit delivers e to every observer, synchronously and in attachment
// order. Safe on a nil bus (drops the event).
//
//simlint:hotpath observation emission: runs once per event on observed runs and must stay allocation-free
func (b *Bus) Emit(e *Event) {
	if b == nil {
		return
	}
	for _, o := range b.obs {
		o.Event(e)
	}
}

// ClockMonitor forwards engine clock steps to a bus as EvStep events. It
// structurally satisfies sim.Monitor, so the engine's monitor hook becomes
// a thin adapter over the bus without this package importing sim.
type ClockMonitor struct {
	Bus *Bus

	ev Event // reused per step; observers must not retain it
}

// Step implements the sim.Monitor contract: one engine event ran, moving
// the clock from prev to now.
func (m *ClockMonitor) Step(prev, now int64) {
	m.ev = Event{Kind: EvStep, Time: now, Count: prev, Task: -1, CPU: -1}
	m.Bus.Emit(&m.ev)
}
