package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeTrace records a run's events and renders them as Chrome
// trace-event JSON (the format read by Perfetto and chrome://tracing):
// one process per run, one thread lane per processor, named after the
// stream it hosts (A-stream/R-stream in slipstream mode). Durations are
// cycles; the viewer displays them as microseconds, so 1 µs on screen is
// one simulated cycle.
//
// Recorded spans: task lifetimes, barrier/event waits, lock waits, token
// waits, and every access satisfied beyond the private L1 (bound the
// volume with MinAccess). Instants: session boundaries, recoveries, and
// policy switches.
//
// The zero value records with Pid 0 and no process name; set Pid and Name
// before writing when merging several runs into one file. Output is
// deterministic: records sort stably by start time, so equal runs render
// byte-identical JSON.
type ChromeTrace struct {
	// Pid is the trace process id for this run's events.
	Pid int
	// Name, when set, is emitted as the process_name metadata (e.g. the
	// RunSpec string).
	Name string
	// MinAccess drops access spans shorter than this many cycles; zero
	// keeps every non-L1 access.
	MinAccess int64

	recs    []chromeRec
	threads []threadMeta
}

type chromeRec struct {
	ph   byte // 'X' complete span or 'i' instant
	ts   int64
	dur  int64
	tid  int
	name string
	note string // optional args.note
}

type threadMeta struct {
	tid  int
	name string
}

// Event implements Observer.
func (t *ChromeTrace) Event(e *Event) {
	switch e.Kind {
	case EvTaskStart:
		lane := "task"
		switch e.Role {
		case RoleR:
			lane = "R-stream"
		case RoleA:
			lane = "A-stream"
		}
		t.threads = append(t.threads, threadMeta{tid: e.CPU, name: fmt.Sprintf("cpu%d (%s)", e.CPU, lane)})
		if e.Flags&FlagRefork != 0 {
			t.add(chromeRec{ph: 'i', ts: e.Time, tid: e.CPU, name: "refork"})
		}
	case EvTaskEnd:
		t.add(chromeRec{ph: 'X', ts: e.Time - e.Dur, dur: e.Dur, tid: e.CPU,
			name: fmt.Sprintf("task%d(%s)", e.Task, e.Note)})
	case EvAccess:
		if e.Level <= LevelL1 || e.Dur < t.MinAccess {
			return
		}
		t.add(chromeRec{ph: 'X', ts: e.Time - e.Dur, dur: e.Dur, tid: e.CPU, name: e.Level.String()})
	case EvBarrier:
		name := "barrier"
		if e.Note != "" {
			name = e.Note + "-wait"
		}
		t.add(chromeRec{ph: 'X', ts: e.Time - e.Dur, dur: e.Dur, tid: e.CPU, name: name})
	case EvLock:
		t.add(chromeRec{ph: 'X', ts: e.Time - e.Dur, dur: e.Dur, tid: e.CPU, name: "lock"})
	case EvToken:
		if e.Dur > 0 {
			t.add(chromeRec{ph: 'X', ts: e.Time - e.Dur, dur: e.Dur, tid: e.CPU, name: "token"})
		}
	case EvSession:
		t.add(chromeRec{ph: 'i', ts: e.Time, tid: e.CPU, name: "session", note: e.Note})
	case EvRecovery:
		t.add(chromeRec{ph: 'i', ts: e.Time, tid: e.CPU, name: "recovery"})
	case EvPolicySwitch:
		t.add(chromeRec{ph: 'i', ts: e.Time, tid: e.CPU, name: "policy:" + e.Note})
	}
}

func (t *ChromeTrace) add(r chromeRec) { t.recs = append(t.recs, r) }

// Len returns the number of recorded trace records.
func (t *ChromeTrace) Len() int { return len(t.recs) }

// WriteJSON renders this run alone; see WriteChrome for merging runs.
func (t *ChromeTrace) WriteJSON(w io.Writer) error { return WriteChrome(w, t) }

// WriteChrome writes one Chrome trace-event JSON document containing every
// given run, in argument order. Callers merging runs assign each a
// distinct Pid first.
func WriteChrome(w io.Writer, runs ...*ChromeTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	item := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	for _, t := range runs {
		if t.Name != "" {
			item(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
				t.Pid, jsonStr(t.Name)))
		}
		for _, th := range t.sortedThreads() {
			item(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				t.Pid, th.tid, jsonStr(th.name)))
		}
		recs := make([]chromeRec, len(t.recs))
		copy(recs, t.recs)
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].ts < recs[j].ts })
		for _, r := range recs {
			switch r.ph {
			case 'X':
				item(fmt.Sprintf(`{"name":%s,"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d}`,
					jsonStr(r.name), t.Pid, r.tid, r.ts, r.dur))
			case 'i':
				args := ""
				if r.note != "" {
					args = fmt.Sprintf(`,"args":{"note":%s}`, jsonStr(r.note))
				}
				item(fmt.Sprintf(`{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d%s}`,
					jsonStr(r.name), t.Pid, r.tid, r.ts, args))
			}
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// sortedThreads returns the run's thread metadata deduplicated (first
// registration wins) and ordered by tid.
func (t *ChromeTrace) sortedThreads() []threadMeta {
	var out []threadMeta
	for _, th := range t.threads {
		dup := false
		for _, o := range out {
			if o.tid == th.tid {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, th)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].tid < out[j].tid })
	return out
}

// jsonStr encodes s as a JSON string literal.
func jsonStr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Go string always marshals; keep the signature simple.
		return `"?"`
	}
	return string(b)
}
