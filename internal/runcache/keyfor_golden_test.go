package runcache

import (
	"testing"

	"slipstream/internal/core"
	"slipstream/internal/kernels"
	"slipstream/internal/memsys"
	"slipstream/internal/runspec"
)

// TestKeyForGolden pins the cache keys of representative specs spanning
// every mode, ARSync policy, option flag, size preset, and a non-default
// machine. These hashes were captured at core.SimVersion "2" before the
// RunSpec.Params field existed; a failure means a schema or
// normalization change silently invalidated (or, worse, silently
// *collided*) the fleet's persistent caches. Adding a field must keep
// parameterless specs hashing identically — Params carries
// `json:"params,omitempty"` exactly so this table never moves. If a hash
// change is intentional, bump core.SimVersion instead of editing keys.
func TestKeyForGolden(t *testing.T) {
	if core.SimVersion != "2" {
		t.Fatalf("core.SimVersion = %q; golden keys captured at \"2\" — recapture the table alongside the version bump", core.SimVersion)
	}
	slip := func(k string) runspec.RunSpec {
		return runspec.RunSpec{Kernel: k, Size: kernels.Tiny, Mode: core.ModeSlipstream,
			ARSync: core.OneTokenLocal, CMPs: 8, TransparentLoads: true, SelfInvalidate: true}
	}
	netMachine := memsys.DefaultParams(4)
	netMachine.NetTime = 100
	golden := []struct {
		key string
		sp  runspec.RunSpec
	}{
		{"8cd56f42a9cf7ece7586651c1e6e2ec6", slip("FFT")},
		{"127b3e1b3969404935db2d4e85945b09", slip("OCEAN")},
		{"069eeb1d15112ecec83736191bd9e149", slip("WATER-NS")},
		{"52df3ea68f2c0058a2779edd061e12bd", slip("WATER-SP")},
		{"5c0ce032c5a11a915aa9282067a3f9ca", slip("SOR")},
		{"b17fa3f01e4896f3cdcc022719f90f26", slip("LU")},
		{"78cbdec40ba1a46eba71e12204597176", slip("CG")},
		{"0b9adbefc37b1103116c1e238e331d70", slip("MG")},
		{"c43a33d59d8e265fe620888e38351779", slip("SP")},
		{"e3eeeb2a3830ec90157ed4517deaec86",
			runspec.RunSpec{Kernel: "SOR", Size: kernels.Small, Mode: core.ModeSingle, CMPs: 4}},
		{"d2a7d1f715bc93831c35270bb10e3ad4",
			runspec.RunSpec{Kernel: "SOR", Size: kernels.Tiny, Mode: core.ModeSequential, CMPs: 0}},
		{"86a0ee76d5d52cbf8ae578b7365708f1",
			runspec.RunSpec{Kernel: "FFT", Size: kernels.Paper, Mode: core.ModeSlipstream,
				ARSync: core.OneTokenGlobal, CMPs: 16, TransparentLoads: true}},
		{"6461e031de2dec6d7726cd5bbfc8d929",
			runspec.RunSpec{Kernel: "CG", Size: kernels.Tiny, Mode: core.ModeDouble, CMPs: 2}},
		{"5cbd4e745982d03021af12ab64716a79",
			runspec.RunSpec{Kernel: "MG", Size: kernels.Small, Mode: core.ModeSlipstream,
				ARSync: core.ZeroTokenGlobal, CMPs: 4, AdaptiveARSync: true}},
		{"cc41625d9711e16b69da021d2443f30a",
			runspec.RunSpec{Kernel: "SP", Size: kernels.Tiny, Mode: core.ModeSlipstream,
				ARSync: core.ZeroTokenLocal, CMPs: 4, ForwardQueue: true}},
		{"b445263feee1793a6ad36a775d51008e",
			runspec.RunSpec{Kernel: "OCEAN", Size: kernels.Tiny, Mode: core.ModeSlipstream,
				ARSync: core.OneTokenLocal, CMPs: 4, Machine: netMachine}},
	}
	for _, g := range golden {
		got, err := KeyFor(core.SimVersion, g.sp)
		if err != nil {
			t.Fatalf("KeyFor(%v): %v", g.sp, err)
		}
		if got != g.key {
			t.Errorf("KeyFor(%v) = %s, want %s: existing cache entries would be orphaned", g.sp, got, g.key)
		}
	}
}

// TestKeyForParamsFork checks the other side of the compatibility bargain:
// a spec that does carry parameters must hash differently from the same
// spec without them (different knobs are different runs), while
// non-canonical spellings of the same parameters must collapse to one key.
func TestKeyForParamsFork(t *testing.T) {
	base := runspec.RunSpec{Kernel: "SYNTH", Size: kernels.Tiny, Mode: core.ModeSingle, CMPs: 4}
	k0, err := KeyFor(core.SimVersion, base)
	if err != nil {
		t.Fatal(err)
	}
	withP := base
	withP.Params = "mig=0.25,seed=7"
	k1, err := KeyFor(core.SimVersion, withP)
	if err != nil {
		t.Fatal(err)
	}
	if k0 == k1 {
		t.Fatalf("params did not fork the key: %s", k0)
	}
	scrambled := base
	scrambled.Params = "seed=7.0, mig=0.250"
	k2, err := KeyFor(core.SimVersion, scrambled)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != k1 {
		t.Errorf("non-canonical params spelling forked the key: %s vs %s", k2, k1)
	}
}
