package runcache

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"slipstream/internal/core"
)

// newPeered serves a fresh local cache over the peer protocol and returns
// both ends.
func newPeered(t *testing.T) (*Cache, *Peer) {
	t.Helper()
	c, err := Open(t.TempDir(), core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(PeerHandler(c))
	t.Cleanup(ts.Close)
	return c, NewPeer(ts.URL, core.SimVersion)
}

// TestPeerRoundTrip pins the Store-seam interchangeability: a result
// stored through the HTTP peer backend lands in the serving daemon's
// local cache, and a Load through either backend returns the identical
// result.
func TestPeerRoundTrip(t *testing.T) {
	local, peer := newPeered(t)
	sp := tinySpec()
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := peer.Load(sp); ok || err != nil {
		t.Fatalf("empty peer: ok=%t err=%v, want clean miss", ok, err)
	}
	if err := peer.Store(sp, res); err != nil {
		t.Fatal(err)
	}
	if local.Len() != 1 || peer.Len() != 1 {
		t.Fatalf("Len: local=%d peer=%d, want 1/1", local.Len(), peer.Len())
	}

	fromPeer, ok, err := peer.Load(sp)
	if !ok || err != nil {
		t.Fatalf("peer.Load: ok=%t err=%v", ok, err)
	}
	fromLocal, ok, err := local.Load(sp)
	if !ok || err != nil {
		t.Fatalf("local.Load: ok=%t err=%v", ok, err)
	}
	a, _ := json.Marshal(fromPeer)
	b, _ := json.Marshal(fromLocal)
	if !bytes.Equal(a, b) {
		t.Fatalf("peer and local loads differ:\n%s\nvs\n%s", a, b)
	}

	// Keys agree across backends — the content address is the contract.
	pk, _ := peer.Key(sp)
	lk, _ := local.Key(sp)
	if pk != lk {
		t.Fatalf("peer key %s != local key %s", pk, lk)
	}
}

// TestPeerVerifiesBeforeServing pins the trust boundary: an entry
// tampered with on the serving side fails the fetching side's
// verification and is reported as an error, never served as a result.
func TestPeerVerifiesBeforeServing(t *testing.T) {
	local, peer := newPeered(t)
	sp := tinySpec()
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Store(sp, res); err != nil {
		t.Fatal(err)
	}
	key, err := local.Key(sp)
	if err != nil {
		t.Fatal(err)
	}

	// Tamper: flip the cycle count inside the stored entry. The file stays
	// valid JSON, so the serving side streams it — the fetch-side verify
	// (key re-derivation is immune to result tampering, but the result is
	// still gated by spec/version checks) must catch a spec swap.
	path := local.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatal(err)
	}
	e.Spec.CMPs = e.Spec.CMPs * 2 // entry now answers a different spec
	tampered, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	got, ok, err := peer.Load(sp)
	if ok || got != nil {
		t.Fatal("tampered entry served")
	}
	if err == nil {
		t.Fatal("tampered entry loaded without surfacing an error")
	}
}

// TestPeerHandlerRejectsBadPuts pins the accept-side verification: offers
// with a version mismatch or a key that does not re-derive from the
// offered content are refused with 400, and bad keys never touch the
// filesystem.
func TestPeerHandlerRejectsBadPuts(t *testing.T) {
	local, peer := newPeered(t)
	sp := tinySpec()
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	key, err := local.Key(sp)
	if err != nil {
		t.Fatal(err)
	}

	put := func(path string, e entry) int {
		t.Helper()
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, peer.Base()+path, bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	good := entry{Version: core.SimVersion, Spec: sp.Normalize(), Result: res}
	if code := put("/"+key, entry{Version: "0-bogus", Spec: sp.Normalize(), Result: res}); code != http.StatusBadRequest {
		t.Errorf("version-mismatch PUT: HTTP %d, want 400", code)
	}
	wrongKey := strings.Repeat("0", 32)
	if code := put("/"+wrongKey, good); code != http.StatusBadRequest {
		t.Errorf("key-mismatch PUT: HTTP %d, want 400", code)
	}
	if code := put("/not-a-key", good); code != http.StatusBadRequest {
		t.Errorf("malformed-key PUT: HTTP %d, want 400", code)
	}
	if code := put("/../../etc/passwd", good); code != http.StatusBadRequest {
		t.Errorf("traversal-key PUT: HTTP %d, want 400", code)
	}
	if local.Len() != 0 {
		t.Fatalf("rejected PUTs left %d entries", local.Len())
	}

	// The well-formed offer lands.
	if code := put("/"+key, good); code != http.StatusNoContent {
		t.Errorf("valid PUT: HTTP %d, want 204", code)
	}
	if local.Len() != 1 {
		t.Fatalf("valid PUT not persisted")
	}
}
