package runcache

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"slipstream/internal/core"
	"slipstream/internal/kernels"
	"slipstream/internal/runspec"
)

func tinySpec() runspec.RunSpec {
	return runspec.RunSpec{
		Kernel: "SOR", Size: kernels.Tiny,
		Mode: core.ModeSlipstream, ARSync: core.ZeroTokenLocal, CMPs: 2,
	}
}

func TestRoundTripDeepEqual(t *testing.T) {
	c, err := Open(t.TempDir(), core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySpec()
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Load(sp); ok || err != nil {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Store(sp, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Load(sp)
	if !ok || err != nil {
		t.Fatal("stored entry not found")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("round trip changed result:\n got %+v\nwant %+v", got, res)
	}
	// A normalized-equal spec (explicit default machine) hits the same entry.
	if _, ok, _ := c.Load(sp.Normalize()); !ok {
		t.Error("normalized spec missed the cache")
	}
}

func TestDistinctSpecsDistinctEntries(t *testing.T) {
	c, err := Open(t.TempDir(), core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	a := tinySpec()
	b := tinySpec()
	b.TransparentLoads = true
	ra, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(a, ra); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Load(b); ok {
		t.Error("spec with different feature flags hit the wrong entry")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestStaleVersionEvictedOnOpen(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir, "0-test")
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySpec()
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Store(sp, res); err != nil {
		t.Fatal(err)
	}
	if old.Len() != 1 {
		t.Fatalf("seed entry not written")
	}

	// A new simulator version prunes the old entry and misses.
	cur, err := Open(dir, "1-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cur.Load(sp); ok {
		t.Error("stale-version entry served")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("stale entries not evicted: %v", files)
	}
}

func TestCorruptEntryEvictedOnLoad(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySpec()
	key, err := c.Key(sp)
	if err != nil {
		t.Fatal(err)
	}
	path := c.path(key)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, ok, err := c.Load(sp)
	if ok || res != nil {
		t.Fatal("corrupt entry served")
	}
	if err == nil {
		t.Fatal("corrupt entry loaded without surfacing an error")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt entry still live after quarantine")
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("corrupt entry not quarantined to .bad: %v", err)
	}
	if got := c.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d, want 1", got)
	}
	// A quarantined key misses cleanly on the next probe (no error: the
	// slot is simply empty again) and can be refilled.
	if _, ok, err := c.Load(sp); ok || err != nil {
		t.Fatalf("post-quarantine probe: ok=%t err=%v, want clean miss", ok, err)
	}
}

// TestLoadIOErrorDoesNotQuarantine pins the quarantine trigger: only
// content proven bad (undecodable or unverifiable JSON) may be renamed to
// .bad. A read failure says nothing about the content, so the entry must
// stay in place and the error surface to the caller as a miss.
func TestLoadIOErrorDoesNotQuarantine(t *testing.T) {
	c, err := Open(t.TempDir(), core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySpec()
	key, err := c.Key(sp)
	if err != nil {
		t.Fatal(err)
	}
	// A directory at the entry path makes os.ReadFile fail with a pure
	// I/O error (EISDIR) while the path still exists — the shape of any
	// transient read failure over a valid entry.
	path := c.path(key)
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	res, ok, err := c.Load(sp)
	if ok || res != nil {
		t.Fatal("unreadable entry served")
	}
	if err == nil {
		t.Fatal("read failure loaded without surfacing an error")
	}
	if got := c.Quarantined(); got != 0 {
		t.Errorf("Quarantined() = %d after I/O error, want 0", got)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("entry renamed away on I/O error: %v", err)
	}
	if _, err := os.Stat(path + ".bad"); !errors.Is(err, os.ErrNotExist) {
		t.Error(".bad file created for a pure I/O error")
	}
}

// TestOpenQuarantinesTruncatedEntry pins the prune() bugfix: an
// unreadable or truncated current-version entry found at Open must be
// quarantined (renamed to .bad and counted), not served and not left in
// place to fail every future Load.
func TestOpenQuarantinesTruncatedEntry(t *testing.T) {
	dir := t.TempDir()
	seed, err := Open(dir, core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySpec()
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Store(sp, res); err != nil {
		t.Fatal(err)
	}
	key, err := seed.Key(sp)
	if err != nil {
		t.Fatal(err)
	}
	path := seed.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-entry: the file exists, is current-version, and is not
	// valid JSON.
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := Open(dir, core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d after Open over truncated entry, want 1", got)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("truncated entry still live after Open")
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("truncated entry not quarantined to .bad: %v", err)
	}
	if n := c.Len(); n != 0 {
		t.Errorf("Len() = %d, want 0 (quarantined entries are not entries)", n)
	}
	if _, ok, err := c.Load(sp); ok || err != nil {
		t.Fatalf("Load over quarantined key: ok=%t err=%v, want clean miss", ok, err)
	}
	// The cache heals: a fresh Store overwrites the slot and round-trips.
	if err := c.Store(sp, res); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Load(sp); !ok || err != nil {
		t.Fatalf("refill after quarantine: ok=%t err=%v, want hit", ok, err)
	}
	// A later Open keeps the current-version quarantine file (it exists
	// for inspection) but collects quarantine left by other versions.
	if _, err := Open(dir, core.SimVersion); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("current-version .bad file not kept for inspection: %v", err)
	}
	stale := filepath.Join(dir, "v0stale-00c0ffee00c0ffee00c0ffee00c0ffee.json.bad")
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, core.SimVersion); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Error("other-version .bad file survived Open; stale quarantine should be collected")
	}
}

func TestStoreRejectsUnverified(t *testing.T) {
	c, err := Open(t.TempDir(), core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{Kernel: "SOR", VerifyErr: errors.New("wrong numerics")}
	if err := c.Store(tinySpec(), res); err == nil {
		t.Fatal("unverified result stored")
	}
}

// TestOpenPrunesPreviousSimVersion pins the version bump that accompanied
// the invariant-auditor fixes: entries cached by the previous simulator
// version ("1") must never be served again, because the Once accounting
// and IsL1Hit critical-section fixes changed simulated timing.
func TestOpenPrunesPreviousSimVersion(t *testing.T) {
	if core.SimVersion == "1" {
		t.Fatal("SimVersion was not bumped past the pre-audit semantics")
	}
	dir := t.TempDir()
	stale := filepath.Join(dir, "v1-00c0ffee00c0ffee.json")
	if err := os.WriteFile(stale, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, core.SimVersion); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("v1 cache entry survived Open under SimVersion %q (stat err: %v)",
			core.SimVersion, err)
	}
}
