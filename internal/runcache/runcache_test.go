package runcache

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"slipstream/internal/core"
	"slipstream/internal/kernels"
	"slipstream/internal/runspec"
)

func tinySpec() runspec.RunSpec {
	return runspec.RunSpec{
		Kernel: "SOR", Size: kernels.Tiny,
		Mode: core.ModeSlipstream, ARSync: core.ZeroTokenLocal, CMPs: 2,
	}
}

func TestRoundTripDeepEqual(t *testing.T) {
	c, err := Open(t.TempDir(), core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySpec()
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(sp); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Store(sp, res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(sp)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("round trip changed result:\n got %+v\nwant %+v", got, res)
	}
	// A normalized-equal spec (explicit default machine) hits the same entry.
	if _, ok := c.Load(sp.Normalize()); !ok {
		t.Error("normalized spec missed the cache")
	}
}

func TestDistinctSpecsDistinctEntries(t *testing.T) {
	c, err := Open(t.TempDir(), core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	a := tinySpec()
	b := tinySpec()
	b.TransparentLoads = true
	ra, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(a, ra); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(b); ok {
		t.Error("spec with different feature flags hit the wrong entry")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestStaleVersionEvictedOnOpen(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir, "0-test")
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySpec()
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Store(sp, res); err != nil {
		t.Fatal(err)
	}
	if old.Len() != 1 {
		t.Fatalf("seed entry not written")
	}

	// A new simulator version prunes the old entry and misses.
	cur, err := Open(dir, "1-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Load(sp); ok {
		t.Error("stale-version entry served")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("stale entries not evicted: %v", files)
	}
}

func TestCorruptEntryEvictedOnLoad(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySpec()
	key, err := c.Key(sp)
	if err != nil {
		t.Fatal(err)
	}
	path := c.path(key)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(sp); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt entry not evicted")
	}
}

func TestStoreRejectsUnverified(t *testing.T) {
	c, err := Open(t.TempDir(), core.SimVersion)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{Kernel: "SOR", VerifyErr: errors.New("wrong numerics")}
	if err := c.Store(tinySpec(), res); err == nil {
		t.Fatal("unverified result stored")
	}
}

// TestOpenPrunesPreviousSimVersion pins the version bump that accompanied
// the invariant-auditor fixes: entries cached by the previous simulator
// version ("1") must never be served again, because the Once accounting
// and IsL1Hit critical-section fixes changed simulated timing.
func TestOpenPrunesPreviousSimVersion(t *testing.T) {
	if core.SimVersion == "1" {
		t.Fatal("SimVersion was not bumped past the pre-audit semantics")
	}
	dir := t.TempDir()
	stale := filepath.Join(dir, "v1-00c0ffee00c0ffee.json")
	if err := os.WriteFile(stale, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, core.SimVersion); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("v1 cache entry survived Open under SimVersion %q (stat err: %v)",
			core.SimVersion, err)
	}
}
