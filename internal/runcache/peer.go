// The content-addressed peer protocol: daemons exchange cache entries as
// the same self-describing {version, spec, result} JSON the local backend
// persists, addressed by the entry key.
//
//	GET  <base>/<key>   fetch one entry (404: miss)
//	PUT  <base>/<key>   offer one entry (verified before acceptance)
//	GET  <base>/        backend stats {"version": ..., "len": N}
//
// Both sides verify before trusting: PeerHandler re-derives the key from
// the offered entry's own content and rejects mismatches, and Peer.Load
// verifies a fetched entry against the spec it asked for. A compromised
// or stale peer can therefore cause misses, never wrong results.

package runcache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"slipstream/internal/core"
	"slipstream/internal/runspec"
)

// maxEntryBytes bounds one entry on the peer wire. Results are a few KB
// of counters and breakdowns; a megabyte is generous.
const maxEntryBytes = 1 << 20

// defaultPeerClient bounds every peer call when the caller supplies no
// transport. A hung peer must degrade to a miss (or a Store error), never
// wedge the daemon probing it — http.DefaultClient has no timeout.
var defaultPeerClient = &http.Client{Timeout: 5 * time.Second}

// Peer is a Store backed by another daemon's cache over the
// content-addressed HTTP peer protocol. It holds no local state: every
// Load is a GET against the peer and every Store a PUT, so N daemons
// pointed at one peer share a single fleet-wide result store.
type Peer struct {
	base    string
	version string
	// HTTPClient overrides the transport; nil selects a shared client
	// with a 5s timeout (never the timeout-less http.DefaultClient).
	HTTPClient *http.Client
}

var _ Store = (*Peer)(nil)

// NewPeer returns a Store served by the daemon at base (the cache
// endpoint prefix, e.g. "http://host:port/v1/cache"), keyed under the
// given simulator version (normally core.SimVersion).
func NewPeer(base, version string) *Peer {
	return &Peer{base: strings.TrimRight(base, "/"), version: version}
}

// Base returns the peer's cache endpoint prefix.
func (p *Peer) Base() string { return p.base }

func (p *Peer) httpClient() *http.Client {
	if p.HTTPClient != nil {
		return p.HTTPClient
	}
	return defaultPeerClient
}

// Key returns the content hash naming sp's entry — identical to the local
// backend's, which is what makes the two interchangeable.
func (p *Peer) Key(sp runspec.RunSpec) (string, error) {
	return KeyFor(p.version, sp)
}

// Load fetches sp's entry from the peer and verifies it — version, spec,
// re-derived key, verified result — before serving it. An unreachable
// peer or an entry that fails verification is an error (and a miss).
func (p *Peer) Load(sp runspec.RunSpec) (*core.Result, bool, error) {
	key, err := p.Key(sp)
	if err != nil {
		return nil, false, err
	}
	resp, err := p.httpClient().Get(p.base + "/" + key)
	if err != nil {
		return nil, false, fmt.Errorf("runcache: peer get: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("runcache: peer get %s: HTTP %d", key, resp.StatusCode)
	}
	var e entry
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntryBytes)).Decode(&e); err != nil {
		return nil, false, fmt.Errorf("runcache: peer entry %s: %w", key, err)
	}
	if err := e.verify(p.version, key, sp.Normalize()); err != nil {
		return nil, false, fmt.Errorf("runcache: peer entry %s: %w", key, err)
	}
	return e.Result, true, nil
}

// Store offers a completed run to the peer. The peer re-verifies the
// entry before persisting it.
func (p *Peer) Store(sp runspec.RunSpec, res *core.Result) error {
	if res == nil || res.VerifyErr != nil {
		return fmt.Errorf("runcache: refusing to store unverified result for %v", sp)
	}
	sp = sp.Normalize()
	key, err := p.Key(sp)
	if err != nil {
		return err
	}
	b, err := json.Marshal(entry{Version: p.version, Spec: sp, Result: res})
	if err != nil {
		return fmt.Errorf("runcache: encoding %v: %w", sp, err)
	}
	req, err := http.NewRequest(http.MethodPut, p.base+"/"+key, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("runcache: peer put: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("runcache: peer put %s: HTTP %d: %s", key, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Len reports the peer's entry count (0 when unreachable: Len is a
// diagnostic, not a correctness surface).
func (p *Peer) Len() int {
	resp, err := p.httpClient().Get(p.base + "/")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	var st peerStats
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<10)).Decode(&st) != nil {
		return 0
	}
	return st.Len
}

// peerStats is the body of GET <base>/.
type peerStats struct {
	Version string `json:"version"`
	Len     int    `json:"len"`
}

// PeerHandler serves a local Cache over the content-addressed peer
// protocol. Mount it under the daemon's cache prefix (the service layer
// mounts it at /v1/cache/ automatically when its store is a local Cache).
//
// GETs serve the raw entry file — it is self-describing, so the fetching
// side can verify it. PUTs are verified here before acceptance: version
// match, key re-derived from the offered content, verified result; the
// write then goes through Cache.Store, so it is atomic like any local
// write.
func PeerHandler(c *Cache) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.Trim(r.URL.Path, "/")
		if key == "" {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(peerStats{Version: c.version, Len: c.Len()})
			return
		}
		if !validKey(key) {
			http.Error(w, "malformed entry key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			b, err := os.ReadFile(c.path(key))
			if err != nil {
				http.Error(w, "no such entry", http.StatusNotFound)
				return
			}
			if !json.Valid(b) {
				c.quarantine(c.path(key))
				http.Error(w, "no such entry", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
		case http.MethodPut:
			var e entry
			dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEntryBytes))
			if err := dec.Decode(&e); err != nil {
				http.Error(w, "malformed entry: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := e.verify(c.version, key, e.Spec.Normalize()); err != nil {
				http.Error(w, "rejected entry: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := c.Store(e.Spec, e.Result); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// validKey reports whether key looks like a content hash this package
// produced: exactly 32 lowercase hex digits. Anything else is rejected
// before it can reach the filesystem.
func validKey(key string) bool {
	if len(key) != 32 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}
