// Package runcache persists completed simulation results on disk so
// repeated harness invocations are near-instant. Entries are keyed by a
// content hash of the normalized RunSpec — which folds in the benchmark,
// size preset, execution mode, feature flags, and the full machine
// parameter set — together with the simulator semantics version, so a
// cache never serves results the current simulator would not reproduce.
//
// Entries are JSON files written atomically (temp file + rename), safe
// for concurrent writers within and across processes. Opening a cache
// prunes entries left by other simulator versions.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"slipstream/internal/core"
	"slipstream/internal/runspec"
)

// Cache is a directory of persisted run results for one simulator
// version. Methods are safe for concurrent use.
type Cache struct {
	dir     string
	version string
}

// DefaultDir returns the conventional cache location: the slipstream
// subdirectory of the user cache directory, or a temp-dir fallback when
// the platform reports none.
func DefaultDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "slipstream", "runs")
	}
	return filepath.Join(os.TempDir(), "slipstream-runs")
}

// Open creates (if needed) and opens the cache directory for the given
// simulator version (normally core.SimVersion), evicting entries that
// were written by any other version.
func Open(dir, version string) (*Cache, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	c := &Cache{dir: dir, version: version}
	if err := c.prune(); err != nil {
		return nil, err
	}
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the on-disk format. Version and Spec are stored alongside the
// result so entries are self-describing and verifiable independent of
// their filename.
type entry struct {
	Version string          `json:"version"`
	Spec    runspec.RunSpec `json:"spec"`
	Result  *core.Result    `json:"result"`
}

// Key returns the content hash naming sp's cache entry: SHA-256 over the
// simulator version and the canonical JSON of the normalized spec.
func (c *Cache) Key(sp runspec.RunSpec) (string, error) {
	b, err := json.Marshal(struct {
		Version string          `json:"version"`
		Spec    runspec.RunSpec `json:"spec"`
	}{c.version, sp.Normalize()})
	if err != nil {
		return "", fmt.Errorf("runcache: hashing spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}

// path returns the entry filename: the version (sanitized) is a prefix so
// stale entries are recognizable without reading them.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, "v"+sanitize(c.version)+"-"+key+".json")
}

// Load returns the stored result for sp, if present and valid. Corrupt
// or mismatched entries are evicted and reported as misses.
func (c *Cache) Load(sp runspec.RunSpec) (*core.Result, bool) {
	key, err := c.Key(sp)
	if err != nil {
		return nil, false
	}
	path := c.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var e entry
	if json.Unmarshal(b, &e) != nil ||
		e.Version != c.version ||
		e.Spec != sp.Normalize() ||
		e.Result == nil ||
		e.Result.VerifyErr != nil {
		os.Remove(path)
		return nil, false
	}
	return e.Result, true
}

// Store persists a completed run atomically. Unverified results are
// rejected: a cache must never replay wrong numerics into a figure.
func (c *Cache) Store(sp runspec.RunSpec, res *core.Result) error {
	if res == nil || res.VerifyErr != nil {
		return fmt.Errorf("runcache: refusing to store unverified result for %v", sp)
	}
	sp = sp.Normalize()
	key, err := c.Key(sp)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(entry{Version: c.version, Spec: sp, Result: res}, "", "\t")
	if err != nil {
		return fmt.Errorf("runcache: encoding %v: %w", sp, err)
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: writing %v: %w", sp, firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// Len returns the number of entries currently stored for this version.
func (c *Cache) Len() int {
	names, err := filepath.Glob(filepath.Join(c.dir, "v"+sanitize(c.version)+"-*.json"))
	if err != nil {
		return 0
	}
	return len(names)
}

// prune evicts entries written by other simulator versions (and orphaned
// temp files). The version prefix in the filename makes this a pure
// directory scan.
func (c *Cache) prune() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	keep := "v" + sanitize(c.version) + "-"
	for _, de := range entries {
		name := de.Name()
		stale := strings.HasPrefix(name, "v") && strings.HasSuffix(name, ".json") &&
			!strings.HasPrefix(name, keep)
		if stale || strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(c.dir, name))
		}
	}
	return nil
}

// sanitize keeps version strings filename- and prefix-safe.
func sanitize(v string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.':
			return r
		}
		return '_'
	}, v)
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
