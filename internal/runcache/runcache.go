// Package runcache persists completed simulation results so repeated
// invocations are near-instant. Entries are keyed by a content hash of
// the normalized RunSpec — which folds in the benchmark, size preset,
// execution mode, feature flags, and the full machine parameter set —
// together with the simulator semantics version, so a cache never serves
// results the current simulator would not reproduce.
//
// The package exposes one seam, the Store interface, with two backends:
//
//   - Cache, the local atomic directory backend (JSON files written via
//     temp file + rename, safe for concurrent writers within and across
//     processes; opening prunes entries left by other simulator versions
//     and quarantines unreadable ones as .bad files).
//   - Peer, an HTTP client of another daemon's cache speaking the
//     content-addressed GET/PUT peer protocol served by PeerHandler.
//
// Entries are self-describing {version, spec, result} JSON on disk and on
// the wire, so every backend can verify an entry against the key and spec
// it claims to answer before serving it.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"slipstream/internal/core"
	"slipstream/internal/runspec"
)

// Store is the content-addressed result store seam: the serving layer,
// the harness, and the CLIs depend on this interface rather than on a
// concrete backend, so a daemon can read through a local directory or a
// remote peer interchangeably. Implementations must be safe for
// concurrent use.
type Store interface {
	// Key returns the content hash naming sp's entry: a pure function of
	// the simulator version and the normalized spec, identical across
	// every backend and every process.
	Key(sp runspec.RunSpec) (string, error)

	// Load returns the stored result for sp, if present and valid. A
	// non-nil error reports a corrupt, unreadable, or unverifiable entry;
	// such entries are still misses (ok=false), so callers that do not
	// care about corruption can ignore the error, and callers that do
	// (the serving layer's runcache.corrupt counter) can count it.
	Load(sp runspec.RunSpec) (*core.Result, bool, error)

	// Store persists a completed, verified run.
	Store(sp runspec.RunSpec, res *core.Result) error

	// Len returns the number of entries currently visible.
	Len() int
}

// Cache is a directory of persisted run results for one simulator
// version: the local backend of the Store interface. Methods are safe
// for concurrent use.
type Cache struct {
	dir         string
	version     string
	quarantined atomic.Int64
}

var _ Store = (*Cache)(nil)

// DefaultDir returns the conventional cache location: the slipstream
// subdirectory of the user cache directory, or a temp-dir fallback when
// the platform reports none.
func DefaultDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "slipstream", "runs")
	}
	return filepath.Join(os.TempDir(), "slipstream-runs")
}

// Open creates (if needed) and opens the cache directory for the given
// simulator version (normally core.SimVersion), evicting entries that
// were written by any other version and quarantining unreadable
// current-version entries as .bad files (see Quarantined).
func Open(dir, version string) (*Cache, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	c := &Cache{dir: dir, version: version}
	if err := c.prune(); err != nil {
		return nil, err
	}
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Quarantined returns how many corrupt or unreadable entries this cache
// has renamed to .bad files (at Open and on Load) instead of serving or
// silently deleting them. The files stay in the directory for inspection.
func (c *Cache) Quarantined() int64 { return c.quarantined.Load() }

// entry is the self-describing storage and wire format. Version and Spec
// are stored alongside the result so entries are verifiable independent
// of their filename or URL.
type entry struct {
	Version string          `json:"version"`
	Spec    runspec.RunSpec `json:"spec"`
	Result  *core.Result    `json:"result"`
}

// verify checks that e is servable as the entry named key for spec want
// under version: the version matches, the entry's spec is the one asked
// for, the key re-derives from the entry's own content, and the result is
// present and verified. It is the one gate every backend applies before
// serving or accepting an entry.
func (e *entry) verify(version, key string, want runspec.RunSpec) error {
	switch {
	case e.Version != version:
		return fmt.Errorf("entry version %q, want %q", e.Version, version)
	case e.Spec != want:
		return fmt.Errorf("entry answers spec %v, want %v", e.Spec, want)
	case e.Result == nil:
		return errors.New("entry has no result")
	case e.Result.VerifyErr != nil:
		return fmt.Errorf("entry result unverified: %v", e.Result.VerifyErr)
	}
	rekey, err := KeyFor(version, e.Spec)
	if err != nil {
		return err
	}
	if rekey != key {
		return fmt.Errorf("entry content hashes to %s, not %s", rekey, key)
	}
	return nil
}

// KeyFor returns the content hash naming sp's cache entry under the given
// simulator version: SHA-256 over the version and the canonical JSON of
// the normalized spec. Every Store backend and the gateway's consistent
// hashing use this one function, so placement and lookup agree
// everywhere.
func KeyFor(version string, sp runspec.RunSpec) (string, error) {
	b, err := json.Marshal(struct {
		Version string          `json:"version"`
		Spec    runspec.RunSpec `json:"spec"`
	}{version, sp.Normalize()})
	if err != nil {
		return "", fmt.Errorf("runcache: hashing spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}

// Key returns the content hash naming sp's cache entry.
func (c *Cache) Key(sp runspec.RunSpec) (string, error) {
	return KeyFor(c.version, sp)
}

// path returns the entry filename: the version (sanitized) is a prefix so
// stale entries are recognizable without reading them.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, "v"+sanitize(c.version)+"-"+key+".json")
}

// quarantine renames a bad entry to a .bad file so it is never served
// again but stays available for inspection.
func (c *Cache) quarantine(path string) {
	if os.Rename(path, path+".bad") == nil {
		c.quarantined.Add(1)
	}
}

// Load returns the stored result for sp, if present and valid. Corrupt or
// unverifiable entries are quarantined, reported as misses, and surfaced
// through the error return so callers can count them. A read failure
// other than not-exist is surfaced the same way but does NOT quarantine:
// it says nothing about the entry's content, and a transient I/O error
// must not evict a valid entry.
func (c *Cache) Load(sp runspec.RunSpec) (*core.Result, bool, error) {
	key, err := c.Key(sp)
	if err != nil {
		return nil, false, err
	}
	path := c.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("runcache: reading %s: %w", filepath.Base(path), err)
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		c.quarantine(path)
		return nil, false, fmt.Errorf("runcache: corrupt entry %s: %w", filepath.Base(path), err)
	}
	if err := e.verify(c.version, key, sp.Normalize()); err != nil {
		c.quarantine(path)
		return nil, false, fmt.Errorf("runcache: invalid entry %s: %w", filepath.Base(path), err)
	}
	return e.Result, true, nil
}

// Store persists a completed run atomically. Unverified results are
// rejected: a cache must never replay wrong numerics into a figure.
func (c *Cache) Store(sp runspec.RunSpec, res *core.Result) error {
	if res == nil || res.VerifyErr != nil {
		return fmt.Errorf("runcache: refusing to store unverified result for %v", sp)
	}
	sp = sp.Normalize()
	key, err := c.Key(sp)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(entry{Version: c.version, Spec: sp, Result: res}, "", "\t")
	if err != nil {
		return fmt.Errorf("runcache: encoding %v: %w", sp, err)
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: writing %v: %w", sp, firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// Len returns the number of entries currently stored for this version.
func (c *Cache) Len() int {
	names, err := filepath.Glob(filepath.Join(c.dir, "v"+sanitize(c.version)+"-*.json"))
	if err != nil {
		return 0
	}
	return len(names)
}

// prune evicts entries written by other simulator versions (and orphaned
// temp files and stale quarantine files), recognized by the version
// prefix in the filename, and quarantines current-version entries whose
// contents are unreadable or not valid JSON — truncated writes from a
// crashed process must be counted and set aside, not silently ignored
// until a Load trips over them.
func (c *Cache) prune() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	keep := "v" + sanitize(c.version) + "-"
	for _, de := range entries {
		name := de.Name()
		path := filepath.Join(c.dir, name)
		switch {
		case strings.HasPrefix(name, "tmp-"):
			os.Remove(path)
		case strings.HasSuffix(name, ".bad"):
			if !strings.HasPrefix(name, keep) {
				os.Remove(path) // quarantine from another version: moot
			}
		case strings.HasPrefix(name, "v") && strings.HasSuffix(name, ".json"):
			if !strings.HasPrefix(name, keep) {
				os.Remove(path)
				continue
			}
			b, err := os.ReadFile(path)
			if err != nil || !json.Valid(b) {
				c.quarantine(path)
			}
		}
	}
	return nil
}

// sanitize keeps version strings filename- and prefix-safe.
func sanitize(v string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.':
			return r
		}
		return '_'
	}, v)
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
