package slipstream_test

import (
	"context"
	"errors"
	"testing"

	"slipstream"
)

func TestPublicAPIParseModeAndARSync(t *testing.T) {
	for _, m := range []slipstream.Mode{slipstream.Sequential, slipstream.Single, slipstream.Double, slipstream.Slipstream} {
		got, err := slipstream.ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, ar := range slipstream.ARSyncs {
		got, err := slipstream.ParseARSync(ar.String())
		if err != nil || got != ar {
			t.Errorf("ParseARSync(%q) = %v, %v", ar.String(), got, err)
		}
	}
	if _, err := slipstream.ParseMode("warp"); !errors.Is(err, slipstream.ErrUnknownMode) {
		t.Errorf("ParseMode(warp) = %v, want ErrUnknownMode", err)
	}
	if _, err := slipstream.ParseARSync("Z3"); !errors.Is(err, slipstream.ErrUnknownARSync) {
		t.Errorf("ParseARSync(Z3) = %v, want ErrUnknownARSync", err)
	}
}

func TestPublicAPIValidateErrors(t *testing.T) {
	err := slipstream.Options{
		Mode: slipstream.Slipstream, CMPs: 2, SelfInvalidate: true,
	}.Validate()
	if !errors.Is(err, slipstream.ErrSelfInvalidateNeedsTransparentLoads) {
		t.Errorf("Validate = %v, want ErrSelfInvalidateNeedsTransparentLoads", err)
	}
	err = slipstream.Options{Mode: slipstream.Single, CMPs: 2, ForwardQueue: true}.Validate()
	if !errors.Is(err, slipstream.ErrSlipstreamOnly) {
		t.Errorf("Validate = %v, want ErrSlipstreamOnly", err)
	}
}

func TestPublicAPIRunSpecExecute(t *testing.T) {
	specs := []slipstream.RunSpec{
		{Kernel: "SOR", Size: slipstream.SizeTiny, Mode: slipstream.Single, CMPs: 2},
		{Kernel: "SOR", Size: slipstream.SizeTiny, Mode: slipstream.Slipstream, ARSync: slipstream.G0, CMPs: 2},
		{Kernel: "SOR", Size: slipstream.SizeTiny, Mode: slipstream.Single, CMPs: 2}, // duplicate of the first
	}
	results, err := slipstream.Execute(context.Background(), specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results for 3 specs", len(results))
	}
	if results[0] != results[2] {
		t.Error("duplicate specs did not share one simulation")
	}
	if results[0].Cycles <= 0 || results[1].Cycles <= 0 {
		t.Errorf("non-positive cycle counts: %d, %d", results[0].Cycles, results[1].Cycles)
	}
	if results[1].Mode != slipstream.Slipstream {
		t.Errorf("result mode = %v", results[1].Mode)
	}
}

func TestPublicAPIRunSpecValidateAndRun(t *testing.T) {
	sp := slipstream.RunSpec{Kernel: "CG", Size: slipstream.SizeTiny, Mode: slipstream.Double, CMPs: 2}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	bad := slipstream.RunSpec{Kernel: "nope", Size: slipstream.SizeTiny, Mode: slipstream.Single, CMPs: 2}
	if err := bad.Validate(); err == nil {
		t.Error("unknown kernel accepted")
	}
}
